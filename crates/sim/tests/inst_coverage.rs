//! Exhaustiveness guard for [`Inst::def`] / [`Inst::uses`].
//!
//! The static analyses in `mpise-analyze` derive their dataflow facts
//! entirely from `def()`/`uses()`, so a new [`Inst`] variant with wrong
//! (or forgotten) register metadata would silently make the taint
//! verifier unsound. The `variant_witness` match below has **no
//! wildcard arm**: adding a variant to [`Inst`] breaks this test's
//! compilation until a witness — and its expected def/uses below — is
//! added.

use mpise_sim::ext::CustomId;
use mpise_sim::inst::{AluImmOp, AluOp, BranchOp, Inst, LoadOp, StoreOp};
use mpise_sim::Reg;

/// One representative instance per [`Inst`] variant, keyed by variant.
///
/// Exhaustive by construction: the match is over a unit "selector"
/// enum-like list produced from every variant, so the compiler rejects
/// this file whenever `Inst` grows.
fn variant_witness(template: &Inst) -> Inst {
    match *template {
        Inst::Lui { .. } => Inst::Lui {
            rd: Reg::T0,
            imm20: 0x12345,
        },
        Inst::Auipc { .. } => Inst::Auipc {
            rd: Reg::T1,
            imm20: -1,
        },
        Inst::Jal { .. } => Inst::Jal {
            rd: Reg::Ra,
            offset: 8,
        },
        Inst::Jalr { .. } => Inst::Jalr {
            rd: Reg::Zero,
            rs1: Reg::Ra,
            offset: 0,
        },
        Inst::Branch { .. } => Inst::Branch {
            op: BranchOp::Bne,
            rs1: Reg::A0,
            rs2: Reg::A1,
            offset: -4,
        },
        Inst::Load { .. } => Inst::Load {
            op: LoadOp::Ld,
            rd: Reg::A4,
            rs1: Reg::Sp,
            offset: 16,
        },
        Inst::Store { .. } => Inst::Store {
            op: StoreOp::Sd,
            rs1: Reg::Sp,
            rs2: Reg::A4,
            offset: 24,
        },
        Inst::OpImm { .. } => Inst::OpImm {
            op: AluImmOp::Addi,
            rd: Reg::T2,
            rs1: Reg::T3,
            imm: 57,
        },
        Inst::Op { .. } => Inst::Op {
            op: AluOp::Mulhu,
            rd: Reg::T4,
            rs1: Reg::T5,
            rs2: Reg::T6,
        },
        Inst::Fence => Inst::Fence,
        Inst::Ecall => Inst::Ecall,
        Inst::Ebreak => Inst::Ebreak,
        Inst::Custom { .. } => Inst::Custom {
            id: CustomId(0),
            rd: Reg::A0,
            rs1: Reg::A1,
            rs2: Reg::A2,
            rs3: Reg::A3,
            imm: 7,
        },
    }
}

/// Seed templates, one per variant. Kept in one place so
/// `all_witnesses` visibly enumerates the whole enum; field values are
/// irrelevant (they are replaced by [`variant_witness`]).
fn all_witnesses() -> Vec<Inst> {
    let z = Reg::Zero;
    [
        Inst::Lui { rd: z, imm20: 0 },
        Inst::Auipc { rd: z, imm20: 0 },
        Inst::Jal { rd: z, offset: 0 },
        Inst::Jalr {
            rd: z,
            rs1: z,
            offset: 0,
        },
        Inst::Branch {
            op: BranchOp::Beq,
            rs1: z,
            rs2: z,
            offset: 0,
        },
        Inst::Load {
            op: LoadOp::Lb,
            rd: z,
            rs1: z,
            offset: 0,
        },
        Inst::Store {
            op: StoreOp::Sb,
            rs1: z,
            rs2: z,
            offset: 0,
        },
        Inst::OpImm {
            op: AluImmOp::Addi,
            rd: z,
            rs1: z,
            imm: 0,
        },
        Inst::Op {
            op: AluOp::Add,
            rd: z,
            rs1: z,
            rs2: z,
        },
        Inst::Fence,
        Inst::Ecall,
        Inst::Ebreak,
        Inst::Custom {
            id: CustomId(0),
            rd: z,
            rs1: z,
            rs2: z,
            rs3: z,
            imm: 0,
        },
    ]
    .iter()
    .map(variant_witness)
    .collect()
}

#[test]
fn def_and_uses_cover_every_variant() {
    let witnesses = all_witnesses();
    // (def, uses, is_control) per witness, in `all_witnesses` order.
    let expected: Vec<(Option<Reg>, Vec<Reg>, bool)> = vec![
        (Some(Reg::T0), vec![], false),                          // lui
        (Some(Reg::T1), vec![], false),                          // auipc
        (Some(Reg::Ra), vec![], true),                           // jal
        (Some(Reg::Zero), vec![Reg::Ra], true),                  // jalr
        (None, vec![Reg::A0, Reg::A1], true),                    // branch
        (Some(Reg::A4), vec![Reg::Sp], false),                   // load
        (None, vec![Reg::Sp, Reg::A4], false),                   // store
        (Some(Reg::T2), vec![Reg::T3], false),                   // op-imm
        (Some(Reg::T4), vec![Reg::T5, Reg::T6], false),          // op
        (None, vec![], false),                                   // fence
        (None, vec![], false),                                   // ecall
        (None, vec![], false),                                   // ebreak
        (Some(Reg::A0), vec![Reg::A1, Reg::A2, Reg::A3], false), // custom
    ];
    assert_eq!(witnesses.len(), expected.len());
    for (inst, (def, uses, is_control)) in witnesses.iter().zip(expected) {
        assert_eq!(inst.def(), def, "{inst}: wrong def()");
        assert_eq!(inst.uses(), uses, "{inst}: wrong uses()");
        assert_eq!(inst.is_control(), is_control, "{inst}: wrong is_control()");
    }
}

#[test]
fn defs_and_uses_only_name_operand_registers() {
    // Sanity over the witnesses: no instruction may report more than
    // one destination or more than three sources, and every reported
    // register must round-trip through its 5-bit number.
    for inst in all_witnesses() {
        let uses = inst.uses();
        assert!(uses.len() <= 3, "{inst}: too many sources");
        for r in uses.iter().chain(inst.def().iter()) {
            assert_eq!(Reg::from_number(r.number()), Some(*r));
        }
    }
}
