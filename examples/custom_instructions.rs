//! Driving the proposed custom instructions directly: write a tiny
//! multi-precision multiply-accumulate in assembly (textual syntax),
//! run it on the simulated Rocket core with the full-radix ISE
//! attached, and compare against the same loop without the ISE.
//!
//! ```text
//! cargo run --release --example custom_instructions
//! ```

use mpise::isa::full_radix_ext;
use mpise::sim::asm::parse_program;
use mpise::sim::ext::IsaExtension;
use mpise::sim::machine::DATA_BASE;
use mpise::sim::{Machine, Reg};

/// 4-digit MAC loop with the ISE (Listing 3 inner loop).
const ISE_SOURCE: &str = "
    # (e||h||l) += a[i] * b, for i = 0..4; a at a1, b in a2
    li   a4, 0          # l
    li   a5, 0          # h
    li   a6, 0          # e
    li   t1, 4          # trip count
loop:
    ld   t0, 0(a1)
    maddhu t2, t0, a2, a4
    maddlu a4, t0, a2, a4
    cadd a6, a5, t2, a6
    add  a5, a5, t2
    addi a1, a1, 8
    addi t1, t1, -1
    bnez t1, loop
    ebreak
";

/// The same loop using only base RV64IM instructions (Listing 1).
const ISA_SOURCE: &str = "
    li   a4, 0
    li   a5, 0
    li   a6, 0
    li   t1, 4
loop:
    ld   t0, 0(a1)
    mulhu t3, t0, a2
    mul  t2, t0, a2
    add  a4, a4, t2
    sltu t2, a4, t2
    add  t3, t3, t2
    add  a5, a5, t3
    sltu t3, a5, t3
    add  a6, a6, t3
    addi a1, a1, 8
    addi t1, t1, -1
    bnez t1, loop
    ebreak
";

fn run(source: &str, ext: IsaExtension) -> (u64, u64, u64, u64, u64) {
    let program = parse_program(source, &ext).expect("assembles");
    println!("--- {} ---", ext.name());
    print!("{}", program.disassemble(&ext));
    let mut m = Machine::with_ext(ext);
    m.load_program(&program);
    m.mem
        .write_limbs(DATA_BASE, &[u64::MAX, 0x1234_5678_9abc_def0, 7, u64::MAX])
        .unwrap();
    m.cpu.write_reg(Reg::A1, DATA_BASE);
    m.cpu.write_reg(Reg::A2, 0xfedc_ba98_7654_3210);
    let stats = m.run().expect("runs to ebreak");
    (
        m.cpu.read_reg(Reg::A4),
        m.cpu.read_reg(Reg::A5),
        m.cpu.read_reg(Reg::A6),
        stats.instret,
        stats.cycles,
    )
}

fn main() {
    let (l1, h1, e1, n1, c1) = run(ISA_SOURCE, IsaExtension::new("rv64im"));
    println!(
        "ISA-only:      acc = {e1:#x} || {h1:#018x} || {l1:#018x}   ({n1} insts, {c1} cycles)\n"
    );
    let (l2, h2, e2, n2, c2) = run(ISE_SOURCE, full_radix_ext());
    println!(
        "ISE-supported: acc = {e2:#x} || {h2:#018x} || {l2:#018x}   ({n2} insts, {c2} cycles)\n"
    );
    assert_eq!((l1, h1, e1), (l2, h2, e2), "both variants must agree");
    println!(
        "same result, {:.0}% fewer instructions, {:.2}x faster with the ISE",
        100.0 * (1.0 - n2 as f64 / n1 as f64),
        c1 as f64 / c2 as f64
    );
}
