//! Mini Table 4: measure the cycle cost of each field operation in all
//! four configurations by executing the generated kernels on the
//! Rocket pipeline model (one measurement thread per configuration),
//! then break each cycle count down into retired instructions, stall
//! cycles and flush cycles — all per-run deltas from the corrected
//! [`RunStats`](mpise::sim::machine::RunStats) semantics.
//!
//! ```text
//! cargo run --release --example cycle_counts
//! ```

use mpise::fp::kernels::OpKind;
use mpise::fp::measure::measure_matrix_parallel;

fn main() {
    println!(
        "{:28} {:>14} {:>14} {:>14} {:>14}",
        "Operation (cycles)", "full ISA", "full ISE", "reduced ISA", "reduced ISE"
    );
    let all = measure_matrix_parallel(2);
    for op in OpKind::ALL {
        print!("{:28}", op.label());
        for (_, column) in &all {
            let m = column.iter().find(|m| m.op == op).expect("measured");
            print!(" {:>14}", m.cycles);
        }
        println!();
    }
    println!();
    println!(
        "{:28} {:>14} {:>14} {:>14} {:>14}",
        "Fp-mul breakdown", "full ISA", "full ISE", "reduced ISA", "reduced ISE"
    );
    for (label, pick) in [
        ("  instructions retired", 0usize),
        ("  stall cycles", 1),
        ("  flush cycles", 2),
    ] {
        print!("{label:28}");
        for (_, column) in &all {
            let m = column
                .iter()
                .find(|m| m.op == OpKind::FpMul)
                .expect("measured");
            let v = match pick {
                0 => m.instret,
                1 => m.timing.stall_cycles,
                _ => m.timing.flush_cycles,
            };
            print!(" {v:>14}");
        }
        println!();
    }
    print!("{:28}", "  cycles per instruction");
    for (_, column) in &all {
        let m = column
            .iter()
            .find(|m| m.op == OpKind::FpMul)
            .expect("measured");
        print!(" {:>14.3}", m.cycles as f64 / m.instret as f64);
    }
    println!();
    println!();
    println!("every kernel was validated against the host arithmetic on random");
    println!("inputs and checked to be constant-time before being measured.");
}
