//! Mini Table 4: measure the cycle cost of each field operation in all
//! four configurations by executing the generated kernels on the
//! Rocket pipeline model.
//!
//! ```text
//! cargo run --release --example cycle_counts
//! ```

use mpise::fp::kernels::{Config, OpKind};
use mpise::fp::measure::measure_config;

fn main() {
    println!(
        "{:28} {:>14} {:>14} {:>14} {:>14}",
        "Operation (cycles)", "full ISA", "full ISE", "reduced ISA", "reduced ISE"
    );
    let all: Vec<_> = Config::ALL.iter().map(|&c| measure_config(c, 2)).collect();
    for op in OpKind::ALL {
        print!("{:28}", op.label());
        for column in &all {
            let m = column.iter().find(|m| m.op == op).expect("measured");
            print!(" {:>14}", m.cycles);
        }
        println!();
    }
    println!();
    println!("every kernel was validated against the host arithmetic on random");
    println!("inputs and checked to be constant-time before being measured.");
}
