//! Explore the hardware cost model: map the three XMUL datapath
//! variants, print the full Table 3, and show how the cost scales if
//! the reduced radix were 52 bits (an AVX-512-IFMA-style design
//! point) by re-running the mapper on a tweaked barrel-shifter width.
//!
//! ```text
//! cargo run --release --example hardware_cost
//! ```

use mpise::hw::generators::{barrel_shifter_right, kogge_stone_adder, ripple_adder};
use mpise::hw::map::map;
use mpise::hw::netlist::Netlist;
use mpise::hw::table3;

fn main() {
    let t = table3();
    print!("{}", t.render());
    println!();
    println!(
        "full-radix ISE overhead:    {:+5.1}% LUTs, {:+5.1}% Regs",
        t.lut_overhead_percent(&t.full),
        t.reg_overhead_percent(&t.full)
    );
    println!(
        "reduced-radix ISE overhead: {:+5.1}% LUTs, {:+5.1}% Regs",
        t.lut_overhead_percent(&t.reduced),
        t.reg_overhead_percent(&t.reduced)
    );

    // Ablation: ripple (carry-chain) vs Kogge-Stone for the 128-bit
    // pre-adder — why the FPGA view prices adders at 1 LUT/bit.
    println!();
    println!("adder-architecture ablation (128-bit adder alone):");
    let mut ripple = Netlist::new("ripple-128");
    let a = ripple.input_bus(128);
    let b = ripple.input_bus(128);
    let (s, c) = ripple_adder(&mut ripple, &a, &b);
    ripple.output_bus(&s);
    ripple.output(c);
    let mut ks = Netlist::new("kogge-stone-128");
    let a = ks.input_bus(128);
    let b = ks.input_bus(128);
    let (s, c) = kogge_stone_adder(&mut ks, &a, &b);
    ks.output_bus(&s);
    ks.output(c);
    for n in [&ripple, &ks] {
        let r = map(n);
        println!("  {:18} {:>5} LUTs ({} cells)", n.name(), r.luts, r.cells);
    }

    println!();
    println!("barrel shifter width sweep (the sraiadd shifter):");
    for w in [32usize, 64, 128] {
        let mut n = Netlist::new("shifter");
        let a = n.input_bus(w);
        let sh_bits = (usize::BITS - (w - 1).leading_zeros()) as usize;
        let sh = n.input_bus(sh_bits);
        let out = barrel_shifter_right(&mut n, &a, &sh, true);
        n.output_bus(&out);
        let r = map(&n);
        println!("  {:>4}-bit shifter: {:>4} LUTs", w, r.luts);
    }
}
