//! A guided walk through the isogeny graph: apply single ℓᵢ-isogeny
//! steps to the base curve and watch the Montgomery coefficient move,
//! then return along the inverse path.
//!
//! ```text
//! cargo run --release --example isogeny_walk
//! ```

use mpise::csidh::{group_action, PrivateKey, PublicKey};
use mpise::fp::params::{NUM_PRIMES, PRIMES};
use mpise::fp::FpRed;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn step(direction: i8, index: usize) -> PrivateKey {
    let mut exponents = [0i8; NUM_PRIMES];
    exponents[index] = direction;
    PrivateKey { exponents }
}

fn main() {
    let field = FpRed::new(); // reduced-radix backend, just to show it works here too
    let mut rng = StdRng::seed_from_u64(99);

    let mut curve = PublicKey::BASE;
    println!("start:      E_A with A = {}", curve.a);

    let path = [0usize, 1, 2, 25, 73];
    for &i in &path {
        curve = group_action(&field, &mut rng, &curve, &step(1, i));
        println!(
            "after l_{:<3} ({}-isogeny):  A = {}",
            i + 1,
            PRIMES[i],
            curve.a
        );
    }

    println!("walking back ...");
    for &i in path.iter().rev() {
        curve = group_action(&field, &mut rng, &curve, &step(-1, i));
    }
    println!("returned:   A = {}", curve.a);
    assert_eq!(curve, PublicKey::BASE, "inverse walk must return to E_0");
    println!("round trip through the isogeny graph closed exactly.  [ok]");
}
