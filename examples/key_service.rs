//! Key service: the batched multi-worker key-exchange engine.
//!
//! ```text
//! cargo run --release --example key_service
//! ```
//!
//! Starts a four-worker engine over the host full-radix backend,
//! submits a mixed workload (key generation, shared-secret derivation
//! and public-key validation) from the client side, and prints the
//! engine's statistics snapshot — operation counts, batching, latency
//! percentiles and throughput. Validation requests queued together are
//! served lane-parallel through the `FpBatch` kernels.
//!
//! The example also turns on the `mpise-obs` telemetry layer and
//! finishes with a `/metrics`-style Prometheus dump plus the
//! per-worker span tree, the same exposition `loadgen --metrics-out`
//! writes to disk.

use mpise::csidh::{CsidhKeypair, PublicKey};
use mpise::engine::{Engine, EngineConfig, Outcome, Request};
use mpise::fp::FpFull;
use mpise::mpi::U512;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // Telemetry is disabled by default; the service opts in so the run
    // ends with a scrape-ready metrics dump.
    mpise::obs::set_enabled(true);

    let engine = Engine::start(
        EngineConfig {
            workers: 4,
            queue_capacity: 64,
            batch_lanes: 8,
        },
        FpFull::new,
    );
    println!(
        "engine up: {} workers, queue capacity {}, {} batch lanes",
        engine.config().workers,
        engine.config().queue_capacity,
        engine.config().batch_lanes
    );

    // A peer key pair prepared client-side, so the workload includes a
    // genuine derivation partner and a known-valid curve.
    let field = FpFull::new();
    let mut rng = StdRng::seed_from_u64(0x5eed);
    let peer = CsidhKeypair::generate_with_bound(&field, &mut rng, 1);

    println!("submitting mixed workload ...");
    let mut tickets = Vec::new();
    // Key generation (small exponent bound keeps the example snappy).
    tickets.push((
        "keygen",
        engine.submit(1, Request::Keygen { bound: 1 }, None),
    ));
    // Shared-secret derivation against the peer's public key.
    let ours = CsidhKeypair::generate_with_bound(&field, &mut rng, 1);
    tickets.push((
        "derive",
        engine.submit(
            2,
            Request::DeriveSharedSecret {
                private: ours.private,
                their_public: peer.public,
            },
            None,
        ),
    ));
    // A burst of validations: adjacent requests batch into the
    // lane-parallel path.
    for seed in 3..9 {
        tickets.push((
            "validate",
            engine.submit(seed, Request::ValidatePublicKey { key: peer.public }, None),
        ));
    }
    // One key that must be rejected (A = 1 is an ordinary curve).
    tickets.push((
        "validate",
        engine.submit(
            9,
            Request::ValidatePublicKey {
                key: PublicKey { a: U512::ONE },
            },
            None,
        ),
    ));

    for (kind, ticket) in tickets {
        match ticket.expect("engine accepts while running").wait() {
            Ok(Outcome::Keypair { public, .. }) => {
                println!("  {kind}: public key A = {}", public.a)
            }
            Ok(Outcome::SharedSecret(s)) => println!("  {kind}: shared secret = {}", s.a),
            Ok(Outcome::Validated(v)) => println!("  {kind}: verdict = {v}"),
            Err(e) => println!("  {kind}: error = {e}"),
        }
    }

    println!("\nengine statistics:");
    println!("{}", engine.stats());
    engine.publish_metrics(mpise::obs::global());
    engine.shutdown();
    println!("engine drained and shut down.");

    println!("\n/metrics (Prometheus text exposition):");
    print!("{}", mpise::obs::global().render_prometheus());

    let spans = engine.take_worker_spans();
    if !spans.is_empty() {
        println!("\nworker span tree (simulated cycles attribute only sim-backed runs):");
        print!("{}", spans.render());
    }
}
