//! Quick start: a complete CSIDH-512 key exchange.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Alice and Bob each generate a key pair, validate the peer's public
//! key, and derive the same shared secret — the "drop-in replacement
//! for (EC)DH" workflow the CSIDH authors describe (§2 of the paper).

use mpise::csidh::{validate, CsidhKeypair};
use mpise::fp::FpFull;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let field = FpFull::new();
    let mut rng = StdRng::seed_from_u64(0x5eed);

    // Exponent bound 2 keeps this example snappy; the CSIDH-512
    // parameter set uses 5 (pass bound 5 to generate()).
    println!("generating Alice's key pair ...");
    let alice = CsidhKeypair::generate_with_bound(&field, &mut rng, 2);
    println!("  public key A = {}", alice.public.a);

    println!("generating Bob's key pair ...");
    let bob = CsidhKeypair::generate_with_bound(&field, &mut rng, 2);
    println!("  public key A = {}", bob.public.a);

    println!("validating public keys (supersingularity check) ...");
    assert!(
        validate(&field, &mut rng, &alice.public),
        "Alice's key invalid"
    );
    assert!(validate(&field, &mut rng, &bob.public), "Bob's key invalid");
    println!("  both keys are supersingular curves  [ok]");

    println!("deriving shared secrets ...");
    let s_alice = alice.private.shared_secret(&field, &mut rng, &bob.public);
    let s_bob = bob.private.shared_secret(&field, &mut rng, &alice.public);
    assert_eq!(s_alice, s_bob, "key exchange failed");
    println!("  shared secret = {}", s_alice.a);
    println!("key exchange complete: both sides agree (64-byte key material).");
}
