//! Workspace-root alias so `cargo run --release --bin bench` works
//! without `-p mpise-bench`; see [`mpise_bench::pipeline`] for what is
//! measured and DESIGN.md §9 for the JSON schema.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(mpise_bench::pipeline::run_cli(&args));
}
