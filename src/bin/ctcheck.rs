//! Workspace-root alias so `cargo run --bin ctcheck` works without
//! `-p mpise-bench`; see [`mpise_bench::ctcheck`] for what is checked.

fn main() {
    std::process::exit(mpise_bench::ctcheck::run());
}
