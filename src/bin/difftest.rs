//! Workspace-root alias so `cargo run --bin difftest` works without
//! `-p mpise-conformance`; see [`mpise_conformance::cli`] for modes.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(mpise_conformance::cli::run_cli(&args));
}
