//! Workspace-root alias so `cargo run --release --bin loadgen` works
//! without `-p mpise-engine`; see [`mpise_engine::loadgen`] for the
//! request mix and DESIGN.md §10 for the JSON schema and gate.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(mpise_engine::loadgen::run_cli(&args));
}
