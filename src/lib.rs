//! # mpise — RISC-V ISEs for multi-precision integer arithmetic
//!
//! Facade crate for the reproduction of "RISC-V Instruction Set
//! Extensions for Multi-Precision Integer Arithmetic: A Case Study on
//! Post-Quantum Key Exchange Using CSIDH-512" (DAC 2024).
//!
//! Re-exports the whole stack:
//!
//! * [`isa`] — the proposed custom instructions, intrinsics and the
//!   XMUL datapath model (`mpise-core`);
//! * [`sim`] — the RV64 simulator with the Rocket pipeline timing
//!   model (`mpise-sim`);
//! * [`mpi`] — multi-precision integer arithmetic in both radices
//!   (`mpise-mpi`);
//! * [`fp`] — the CSIDH-512 field layer, kernel generators and the
//!   cycle-measurement harness (`mpise-fp`);
//! * [`csidh`] — the CSIDH-512 key exchange (`mpise-csidh`);
//! * [`hw`] — the structural hardware cost model (`mpise-hw`);
//! * [`engine`] — the batched multi-worker key-exchange service and
//!   its load generator (`mpise-engine`);
//! * [`obs`] — spans, metrics and the sampling profiler behind every
//!   runtime crate's telemetry (`mpise-obs`);
//! * [`conformance`] — the differential conformance subsystem: the
//!   pure reference executor, the ISA fuzzer, the cross-backend
//!   kernel difftest and the CSIDH-512 KAT suite
//!   (`mpise-conformance`).
//!
//! ## Quick start
//!
//! ```
//! use mpise::csidh::CsidhKeypair;
//! use mpise::fp::FpFull;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let field = FpFull::new();
//! let mut rng = StdRng::seed_from_u64(7);
//! let alice = CsidhKeypair::generate_with_bound(&field, &mut rng, 1);
//! let bob = CsidhKeypair::generate_with_bound(&field, &mut rng, 1);
//! let s1 = alice.private.shared_secret(&field, &mut rng, &bob.public);
//! let s2 = bob.private.shared_secret(&field, &mut rng, &alice.public);
//! assert_eq!(s1, s2);
//! ```

pub use mpise_conformance as conformance;
pub use mpise_core as isa;
pub use mpise_csidh as csidh;
pub use mpise_engine as engine;
pub use mpise_fp as fp;
pub use mpise_hw as hw;
pub use mpise_mpi as mpi;
pub use mpise_obs as obs;
pub use mpise_sim as sim;
