//! Binary round trips at kernel scale: every generated kernel encodes
//! to raw 32-bit words and decodes back identically — covering the
//! whole encoder/decoder surface (all base formats plus both ISE
//! encodings) on tens of thousands of real instructions.

use mpise::fp::kernels::{Config, KernelSet};
use mpise::sim::asm::{parse_program, Program};
use mpise::sim::decode::decode;

#[test]
fn every_kernel_encodes_and_decodes_identically() {
    let mut total = 0usize;
    for config in Config::ALL {
        let set = KernelSet::build(config);
        let ext = config.extension();
        for (op, prog) in set.iter() {
            let words = prog
                .encode(&ext)
                .unwrap_or_else(|e| panic!("{config}: {op:?} encode failed: {e}"));
            let back: Vec<_> = words
                .iter()
                .map(|&w| decode(w, &ext).unwrap_or_else(|e| panic!("{config}: {op:?}: {e}")))
                .collect();
            assert_eq!(
                Program::from_insts(back),
                *prog,
                "{config}: {op:?} round trip"
            );
            total += words.len();
        }
    }
    assert!(total > 10_000, "expected >10k instructions, got {total}");
}

#[test]
fn every_kernel_disassembles_and_reparses() {
    for config in Config::ALL {
        let set = KernelSet::build(config);
        let ext = config.extension();
        for (op, prog) in set.iter() {
            let text: String = prog
                .disassemble(&ext)
                .lines()
                .map(|l| l.split(": ").nth(1).expect("addr: inst").to_owned() + "\n")
                .collect();
            let back = parse_program(&text, &ext)
                .unwrap_or_else(|e| panic!("{config}: {op:?} reparse failed: {e}"));
            assert_eq!(back, *prog, "{config}: {op:?} disassembly round trip");
        }
    }
}

#[test]
fn kernels_are_straight_line_constant_time_code() {
    // The paper's field kernels are constant-time: no branches at all
    // (straight-line), no secret-dependent memory addressing (only
    // sp/pointer-relative with static offsets — enforced by
    // construction since offsets are immediates).
    use mpise::sim::Inst;
    for config in Config::ALL {
        let set = KernelSet::build(config);
        for (op, prog) in set.iter() {
            for inst in prog.insts() {
                assert!(
                    !matches!(inst, Inst::Branch { .. } | Inst::Jal { .. }),
                    "{config}: {op:?} contains a branch: {inst}"
                );
            }
            // Exactly one jalr: the final `ret`.
            let jalrs = prog
                .insts()
                .iter()
                .filter(|i| matches!(i, Inst::Jalr { .. }))
                .count();
            assert_eq!(jalrs, 1, "{config}: {op:?} must end in a single ret");
        }
    }
}
