//! Tier-1 known-answer tests: the committed CSIDH-512 vectors under
//! `tests/vectors/` must be reproduced byte-identically by both host
//! backends, and the sparse keygen vector by a direct simulator run
//! (every field operation executed on the Rocket pipeline model).

use mpise::conformance::kat;
use mpise::fp::kernels::Config;
use mpise::fp::simfp::SimFp;
use mpise::fp::{FpFull, FpRed};

#[test]
fn full_radix_host_backend_reproduces_every_vector() {
    let suite = kat::load_suite(&kat::default_vectors_dir()).expect("committed vectors parse");
    assert!(!suite.is_empty());
    let (n, failures) = kat::run_suite(&FpFull::new(), &suite, "FpFull");
    assert_eq!(n as usize, suite.len());
    assert!(failures.is_empty(), "{failures:?}");
}

#[test]
fn reduced_radix_host_backend_reproduces_every_vector() {
    let suite = kat::load_suite(&kat::default_vectors_dir()).expect("committed vectors parse");
    let (n, failures) = kat::run_suite(&FpRed::new(), &suite, "FpRed");
    assert_eq!(n as usize, suite.len());
    assert!(failures.is_empty(), "{failures:?}");
}

#[test]
fn direct_simulation_reproduces_the_sparse_keygen_vector() {
    // The first committed vector is deliberately sparse (two nonzero
    // exponents) so the full group action stays affordable when every
    // field operation runs on the simulated core.
    let suite = kat::load_suite(&kat::default_vectors_dir()).expect("committed vectors parse");
    let sparse = &suite.keygen[0];
    assert!(
        sparse.exponents.iter().filter(|&&e| e != 0).count() <= 2,
        "first vector must stay sparse for the direct-sim run"
    );
    let f = SimFp::new(Config::ALL[3]); // reduced-radix, ISE-supported
    kat::check_keygen(&f, sparse).expect("direct-sim keygen matches the committed bytes");
    assert!(f.cycles() > 0, "the kernels actually ran on the simulator");
}
