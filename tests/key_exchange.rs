//! End-to-end CSIDH-512 key exchange across crates and backends.

use mpise::csidh::{group_action, validate, CsidhKeypair, PrivateKey, PublicKey};
use mpise::fp::params::NUM_PRIMES;
use mpise::fp::{CountingFp, FpFull, FpRed};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn full_radix_key_exchange() {
    let f = FpFull::new();
    let mut rng = StdRng::seed_from_u64(1001);
    let alice = CsidhKeypair::generate_with_bound(&f, &mut rng, 2);
    let bob = CsidhKeypair::generate_with_bound(&f, &mut rng, 2);
    let s1 = alice.private.shared_secret(&f, &mut rng, &bob.public);
    let s2 = bob.private.shared_secret(&f, &mut rng, &alice.public);
    assert_eq!(s1, s2);
}

#[test]
fn reduced_radix_key_exchange() {
    let f = FpRed::new();
    let mut rng = StdRng::seed_from_u64(1002);
    let alice = CsidhKeypair::generate_with_bound(&f, &mut rng, 1);
    let bob = CsidhKeypair::generate_with_bound(&f, &mut rng, 1);
    let s1 = alice.private.shared_secret(&f, &mut rng, &bob.public);
    let s2 = bob.private.shared_secret(&f, &mut rng, &alice.public);
    assert_eq!(s1, s2);
}

#[test]
fn cross_backend_key_exchange() {
    // Alice computes on full-radix, Bob on reduced-radix: the shared
    // secret must still agree (the backend is an implementation
    // detail, like the paper's four interchangeable assembler layers).
    let ff = FpFull::new();
    let fr = FpRed::new();
    let mut rng = StdRng::seed_from_u64(1003);
    let alice = CsidhKeypair::generate_with_bound(&ff, &mut rng, 1);
    let bob = CsidhKeypair::generate_with_bound(&fr, &mut rng, 1);
    let s1 = alice.private.shared_secret(&ff, &mut rng, &bob.public);
    let s2 = bob.private.shared_secret(&fr, &mut rng, &alice.public);
    assert_eq!(s1, s2);
}

#[test]
fn public_keys_validate_and_serialize() {
    let f = FpFull::new();
    let mut rng = StdRng::seed_from_u64(1004);
    let kp = CsidhKeypair::generate_with_bound(&f, &mut rng, 1);
    assert!(validate(&f, &mut rng, &kp.public));
    let bytes = kp.public.to_bytes();
    assert_eq!(bytes.len(), 64, "64-byte public keys (paper §2)");
    assert_eq!(PublicKey::from_bytes(&bytes).unwrap(), kp.public);
}

#[test]
fn derived_keys_differ_between_parties() {
    let f = FpFull::new();
    let mut rng = StdRng::seed_from_u64(1005);
    let a = CsidhKeypair::generate_with_bound(&f, &mut rng, 1);
    let b = CsidhKeypair::generate_with_bound(&f, &mut rng, 1);
    assert_ne!(a.public, b.public);
    assert_ne!(a.public, PublicKey::BASE);
}

#[test]
fn op_counts_match_between_backends() {
    // The high-level algorithm is shared, so both backends perform
    // exactly the same sequence of field operations for the same
    // randomness (the paper's "same code for the high-level
    // computations").
    let key = {
        let mut exponents = [0i8; NUM_PRIMES];
        exponents[3] = 1;
        exponents[50] = -1;
        PrivateKey { exponents }
    };
    let cf = CountingFp::new(FpFull::new());
    let cr = CountingFp::new(FpRed::new());
    let mut rng1 = StdRng::seed_from_u64(1006);
    let mut rng2 = StdRng::seed_from_u64(1006);
    let p1 = group_action(&cf, &mut rng1, &PublicKey::BASE, &key);
    let p2 = group_action(&cr, &mut rng2, &PublicKey::BASE, &key);
    assert_eq!(p1, p2);
    assert_eq!(cf.counts(), cr.counts());
}
