//! Property-based tests over the whole stack (proptest).

use mpise::fp::{Fp, FpFull, FpRed};
use mpise::isa::intrinsics;
use mpise::mpi::fast::{fast_reduce_add, fast_reduce_swap, mod_add, mod_sub};
use mpise::mpi::mul::{mul_karatsuba, mul_os, mul_ps, square_ps};
use mpise::mpi::reference::RefInt;
use mpise::mpi::{Reduced, U512};
use mpise::sim::decode::decode;
use mpise::sim::encode::encode;
use mpise::sim::ext::IsaExtension;
use mpise::sim::inst::{AluImmOp, AluOp, Inst};
use mpise::sim::Reg;
use proptest::prelude::*;

fn arb_u512() -> impl Strategy<Value = U512> {
    prop::array::uniform8(any::<u64>()).prop_map(U512::from_limbs)
}

fn arb_residue() -> impl Strategy<Value = U512> {
    arb_u512().prop_map(|v| {
        let p = mpise::fp::params::Csidh512::get().p;
        // Fold into [0, p): value mod p via the reference.
        let r = RefInt::from_limbs(v.limbs()).rem(&RefInt::from_limbs(p.limbs()));
        U512::from_limbs(r.to_limbs(8).try_into().expect("8 limbs"))
    })
}

/// Non-canonical residues in `[p, 2p)`: every value a correct
/// reduction step must fold, and a range the plain `arb_residue`
/// generator can never emit. `2p < 2^512`, so the addition is exact.
fn arb_noncanonical() -> impl Strategy<Value = U512> {
    arb_residue().prop_map(|v| {
        let p = mpise::fp::params::Csidh512::get().p;
        v.wrapping_add(&p)
    })
}

fn arb_reg() -> impl Strategy<Value = Reg> {
    (0u8..32).prop_map(|n| Reg::from_number(n).expect("in range"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn multiplication_techniques_agree(a in arb_u512(), b in arb_u512()) {
        let ps = mul_ps(&a, &b);
        prop_assert_eq!(ps, mul_os(&a, &b));
        prop_assert_eq!(ps, mul_karatsuba(&a, &b));
        prop_assert_eq!(square_ps(&a), mul_ps(&a, &a));
    }

    #[test]
    fn fast_reduction_algorithms_agree(a in arb_residue(), extra in any::<bool>()) {
        let p = mpise::fp::params::Csidh512::get().p;
        // Input range [0, 2p): a or a + p.
        let x = if extra { a.wrapping_add(&p) } else { a };
        let r1 = fast_reduce_add(&x, &p);
        let r2 = fast_reduce_swap(&x, &p);
        prop_assert_eq!(r1, r2);
        prop_assert!(r1 < p);
    }

    #[test]
    fn modular_add_sub_invert(a in arb_residue(), b in arb_residue()) {
        let p = mpise::fp::params::Csidh512::get().p;
        let s = mod_add(&a, &b, &p);
        prop_assert!(s < p);
        prop_assert_eq!(mod_sub(&s, &b, &p), a);
    }

    #[test]
    fn noncanonical_imports_fold_modulo_p(x in arb_noncanonical()) {
        // Pinned behavior: `Fp::from_uint` reduces modulo p, so an
        // import from [p, 2p) is indistinguishable from its canonical
        // twin x − p, and the export is always canonical.
        let p = mpise::fp::params::Csidh512::get().p;
        let canon = x.wrapping_sub(&p);
        let ff = FpFull::new();
        prop_assert_eq!(ff.from_uint(&x), ff.from_uint(&canon));
        prop_assert!(ff.to_uint(&ff.from_uint(&x)) < p);
        let fr = FpRed::new();
        prop_assert_eq!(fr.from_uint(&x), fr.from_uint(&canon));
        prop_assert!(fr.to_uint(&fr.from_uint(&x)) < p);
    }

    #[test]
    fn fast_reduce_is_exact_on_noncanonical_inputs(x in arb_noncanonical()) {
        // Pinned behavior: on [p, 2p) both single-subtraction
        // reductions return exactly x − p (not merely "something
        // canonical"), and on [0, p) they are the identity.
        let p = mpise::fp::params::Csidh512::get().p;
        let folded = x.wrapping_sub(&p);
        prop_assert_eq!(fast_reduce_add(&x, &p), folded);
        prop_assert_eq!(fast_reduce_swap(&x, &p), folded);
        prop_assert_eq!(fast_reduce_add(&folded, &p), folded);
        prop_assert_eq!(fast_reduce_swap(&folded, &p), folded);
    }

    #[test]
    fn backends_agree_on_noncanonical_inputs(x in arb_noncanonical(), b in arb_residue()) {
        // Mixed canonical/non-canonical operands must not split the
        // radices apart: this was the adversarial-edge gap — the old
        // generators folded everything into [0, p) first.
        let ff = FpFull::new();
        let fr = FpRed::new();
        let m1 = ff.to_uint(&ff.mul(&ff.from_uint(&x), &ff.from_uint(&b)));
        let m2 = fr.to_uint(&fr.mul(&fr.from_uint(&x), &fr.from_uint(&b)));
        prop_assert_eq!(m1, m2);
        let s1 = ff.to_uint(&ff.add(&ff.from_uint(&x), &ff.from_uint(&b)));
        let s2 = fr.to_uint(&fr.add(&fr.from_uint(&x), &fr.from_uint(&b)));
        prop_assert_eq!(s1, s2);
    }

    #[test]
    fn reduced_radix_conversion_preserves_noncanonical_values(x in arb_noncanonical()) {
        // Pinned behavior: radix conversion is NOT reduction — a
        // 512-bit value in [p, 2p) survives the 9 × 57-bit round trip
        // bit-exactly (9 · 57 = 513 bits ≥ 512). Folding happens at
        // the field boundary, never inside the digit converter.
        let r: Reduced<9> = Reduced::from_uint(&x);
        prop_assert!(r.is_canonical());
        prop_assert_eq!(r.to_uint::<8>(), x);
    }

    #[test]
    fn field_axioms_full_radix(a in arb_residue(), b in arb_residue(), c in arb_residue()) {
        field_axioms(&FpFull::new(), a, b, c)?;
    }

    #[test]
    fn field_axioms_reduced_radix(a in arb_residue(), b in arb_residue(), c in arb_residue()) {
        field_axioms(&FpRed::new(), a, b, c)?;
    }

    #[test]
    fn backends_agree(a in arb_residue(), b in arb_residue()) {
        let ff = FpFull::new();
        let fr = FpRed::new();
        let m1 = ff.to_uint(&ff.mul(&ff.from_uint(&a), &ff.from_uint(&b)));
        let m2 = fr.to_uint(&fr.mul(&fr.from_uint(&a), &fr.from_uint(&b)));
        prop_assert_eq!(m1, m2);
    }

    #[test]
    fn reduced_radix_round_trip(a in arb_u512()) {
        let a = a.shr(1); // 511 bits fit 9 limbs of 57 bits
        let r: Reduced<9> = Reduced::from_uint(&a);
        prop_assert!(r.is_canonical());
        prop_assert_eq!(r.to_uint::<8>(), a);
    }

    #[test]
    fn madd_pairs_reassemble(x in any::<u64>(), y in any::<u64>(), z in any::<u64>()) {
        let full = (x as u128) * (y as u128) + z as u128;
        let lo = intrinsics::maddlu(x, y, z) as u128;
        let hi = intrinsics::maddhu(x, y, z) as u128;
        prop_assert_eq!(full, (hi << 64) | lo);
        let p = (x as u128) * (y as u128);
        prop_assert_eq!(intrinsics::madd57lu(x, y, 0) as u128, p & ((1 << 57) - 1));
        prop_assert_eq!(intrinsics::madd57hu(x, y, 0) as u128, (p >> 57) & ((1u128 << 64) - 1));
    }

    #[test]
    fn instruction_encode_decode_round_trip(
        rd in arb_reg(), rs1 in arb_reg(), rs2 in arb_reg(),
        imm in -2048i32..=2047, shamt in 0i32..64,
    ) {
        let ext = IsaExtension::new("none");
        let insts = [
            Inst::Op { op: AluOp::Add, rd, rs1, rs2 },
            Inst::Op { op: AluOp::Mulhu, rd, rs1, rs2 },
            Inst::Op { op: AluOp::Sltu, rd, rs1, rs2 },
            Inst::OpImm { op: AluImmOp::Addi, rd, rs1, imm },
            Inst::OpImm { op: AluImmOp::Srai, rd, rs1, imm: shamt },
            Inst::Load { op: mpise::sim::inst::LoadOp::Ld, rd, rs1, offset: imm },
            Inst::Store { op: mpise::sim::inst::StoreOp::Sd, rs1, rs2, offset: imm },
        ];
        for inst in insts {
            let raw = encode(&inst, &ext).expect("encodes");
            prop_assert_eq!(decode(raw, &ext).expect("decodes"), inst);
        }
    }

    #[test]
    fn ise_encode_decode_round_trip(
        rd in arb_reg(), rs1 in arb_reg(), rs2 in arb_reg(), rs3 in arb_reg(),
        imm in 0u8..64,
    ) {
        for ext in [mpise::isa::full_radix_ext(), mpise::isa::reduced_radix_ext()] {
            for def in ext.defs().to_vec() {
                let inst = if def.format.has_rs3() {
                    Inst::Custom { id: def.id, rd, rs1, rs2, rs3, imm: 0 }
                } else {
                    Inst::Custom { id: def.id, rd, rs1, rs2, rs3: Reg::Zero, imm }
                };
                let raw = encode(&inst, &ext).expect("encodes");
                prop_assert_eq!(decode(raw, &ext).expect("decodes"), inst);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn division_invariant(a in arb_u512(), d in arb_u512()) {
        prop_assume!(!d.is_zero());
        let (q, r) = mpise::mpi::div::div_rem(&a, &d);
        prop_assert!(r < d);
        // a == q*d + r via the reference integers.
        let back = RefInt::from_limbs(q.limbs())
            .mul(&RefInt::from_limbs(d.limbs()))
            .add(&RefInt::from_limbs(r.limbs()));
        prop_assert_eq!(back, RefInt::from_limbs(a.limbs()));
    }

    #[test]
    fn binary_gcd_inverse_matches_fermat(a in arb_residue()) {
        prop_assume!(!a.is_zero());
        let p = mpise::fp::params::Csidh512::get().p;
        let by_gcd = mpise::mpi::div::modinv(&a, &p).expect("p prime, a nonzero");
        let f = FpFull::new();
        let by_fermat = f.to_uint(&f.inv(&f.from_uint(&a)));
        prop_assert_eq!(by_gcd, by_fermat);
    }

    #[test]
    fn sqrt_round_trip(a in arb_residue()) {
        let f = FpRed::new();
        let x = f.from_uint(&a);
        let sq = f.sqr(&x);
        let r = f.sqrt(&sq).expect("squares have roots");
        prop_assert!(f.sqr(&r) == sq);
    }

    #[test]
    fn disassemble_reparse_round_trip(
        ops in prop::collection::vec((arb_reg(), arb_reg(), arb_reg(), 0u8..4), 1..20)
    ) {
        // Random straight-line programs survive disassemble -> parse.
        let ext = mpise::isa::full_radix_ext();
        let mut asm = mpise::sim::Assembler::new();
        for (rd, rs1, rs2, kind) in ops {
            match kind {
                0 => asm.add(rd, rs1, rs2),
                1 => asm.mulhu(rd, rs1, rs2),
                2 => asm.sltu(rd, rs1, rs2),
                _ => asm.custom_r4(mpise::isa::full_radix::MADDLU, rd, rs1, rs2, rs2),
            }
        }
        asm.ebreak();
        let p = asm.finish();
        let text: String = p
            .disassemble(&ext)
            .lines()
            .map(|l| l.split(": ").nth(1).unwrap().to_owned() + "\n")
            .collect();
        let p2 = mpise::sim::asm::parse_program(&text, &ext).expect("reparses");
        prop_assert_eq!(p, p2);
    }

    #[test]
    fn cios_matches_separated_montgomery(a in arb_residue(), b in arb_residue()) {
        let ctx = &mpise::fp::params::Csidh512::get().mont;
        prop_assert_eq!(ctx.mul(&a, &b), ctx.mul_cios(&a, &b));
    }
}

fn field_axioms<F: Fp>(f: &F, a: U512, b: U512, c: U512) -> Result<(), TestCaseError> {
    let (ea, eb, ec) = (f.from_uint(&a), f.from_uint(&b), f.from_uint(&c));
    // Commutativity.
    prop_assert_eq!(f.to_uint(&f.mul(&ea, &eb)), f.to_uint(&f.mul(&eb, &ea)));
    prop_assert_eq!(f.to_uint(&f.add(&ea, &eb)), f.to_uint(&f.add(&eb, &ea)));
    // Associativity.
    let l = f.mul(&f.mul(&ea, &eb), &ec);
    let r = f.mul(&ea, &f.mul(&eb, &ec));
    prop_assert_eq!(f.to_uint(&l), f.to_uint(&r));
    // Distributivity.
    let l = f.mul(&ea, &f.add(&eb, &ec));
    let r = f.add(&f.mul(&ea, &eb), &f.mul(&ea, &ec));
    prop_assert_eq!(f.to_uint(&l), f.to_uint(&r));
    // Identities.
    prop_assert_eq!(f.to_uint(&f.mul(&ea, &f.one())), f.to_uint(&ea));
    prop_assert_eq!(f.to_uint(&f.add(&ea, &f.zero())), f.to_uint(&ea));
    // Inverses (multiplicative, when nonzero).
    if !f.is_zero(&ea) {
        prop_assert_eq!(f.to_uint(&f.mul(&ea, &f.inv(&ea))), U512::ONE);
    }
    prop_assert!(f.is_zero(&f.add(&ea, &f.neg(&ea))));
    Ok(())
}
