//! Cross-stack agreement: the simulated kernels, the host backends and
//! the simulator-backed field produce identical results everywhere.

use mpise::csidh::{group_action, PrivateKey, PublicKey};
use mpise::fp::kernels::{Config, OpKind};
use mpise::fp::measure::{validate_and_measure, KernelRunner};
use mpise::fp::simfp::SimFp;
use mpise::fp::{Fp, FpFull};
use mpise::mpi::U512;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

#[test]
fn every_kernel_validates_in_every_config() {
    for config in Config::ALL {
        let mut runner = KernelRunner::new(config);
        for op in OpKind::ALL {
            validate_and_measure(&mut runner, op, 4, 0xAB + op as u64)
                .unwrap_or_else(|e| panic!("{e}"));
        }
    }
}

#[test]
fn simfp_matches_host_on_random_field_ops() {
    let host = FpFull::new();
    let mut rng = StdRng::seed_from_u64(7);
    for config in Config::ALL {
        let sim = SimFp::new(config);
        for _ in 0..3 {
            let av = U512::from_limbs(std::array::from_fn(|_| rng.gen())).shr(2);
            let bv = U512::from_limbs(std::array::from_fn(|_| rng.gen())).shr(2);
            let (sa, sb) = (sim.from_uint(&av), sim.from_uint(&bv));
            let (ha, hb) = (host.from_uint(&av), host.from_uint(&bv));
            assert_eq!(
                sim.to_uint(&sim.mul(&sa, &sb)),
                host.to_uint(&host.mul(&ha, &hb))
            );
            assert_eq!(
                sim.to_uint(&sim.add(&sa, &sb)),
                host.to_uint(&host.add(&ha, &hb))
            );
            assert_eq!(
                sim.to_uint(&sim.sub(&sa, &sb)),
                host.to_uint(&host.sub(&ha, &hb))
            );
            assert_eq!(sim.to_uint(&sim.sqr(&sa)), host.to_uint(&host.sqr(&ha)));
            assert_eq!(
                sim.to_uint(&sim.inv(&sa)),
                host.to_uint(&host.inv(&ha)),
                "inv through the simulator (hundreds of kernel calls)"
            );
        }
    }
}

#[test]
fn simulated_group_action_equals_host_action() {
    // The headline experiment end-to-end, scaled down: run a (sparse)
    // class group action where every field operation executes on the
    // simulated Rocket core, and check it lands on the same curve as
    // the pure-host computation.
    let key = {
        let mut exponents = [0i8; mpise::fp::params::NUM_PRIMES];
        exponents[0] = 1; // one 3-isogeny
        PrivateKey { exponents }
    };
    let host = FpFull::new();
    let mut rng = StdRng::seed_from_u64(33);
    let expect = group_action(&host, &mut rng, &PublicKey::BASE, &key);

    // Reduced-radix ISE-supported — the paper's winning configuration.
    let sim = SimFp::new(Config::ALL[3]);
    let mut rng = StdRng::seed_from_u64(33);
    let got = group_action(&sim, &mut rng, &PublicKey::BASE, &key);
    assert_eq!(got, expect);
    assert!(
        sim.cycles() > 1_000_000,
        "a real action costs millions of cycles"
    );
}
