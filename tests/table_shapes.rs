//! The reproduction's success criteria: the qualitative shapes of
//! every table and listing in the paper, asserted as tests.

use mpise::fp::kernels::mac;
use mpise::fp::kernels::{Config, OpKind};
use mpise::fp::measure::measure_config;
use mpise::hw::table3;

fn cycles(col: &[mpise::fp::measure::OpMeasurement], op: OpKind) -> u64 {
    col.iter().find(|m| m.op == op).expect("measured").cycles
}

#[test]
fn table4_shape() {
    let cols: Vec<_> = Config::ALL.iter().map(|&c| measure_config(c, 2)).collect();
    let (f_isa, f_ise, r_isa, r_ise) = (&cols[0], &cols[1], &cols[2], &cols[3]);

    // §4: "In the ISA-only case, the full-radix implementation is
    // faster for multiplication and squaring in Fp ... but slower for
    // addition/subtraction".
    assert!(cycles(f_isa, OpKind::FpMul) < cycles(r_isa, OpKind::FpMul));
    assert!(cycles(f_isa, OpKind::FpAdd) > cycles(r_isa, OpKind::FpAdd));

    // "But when using our ISEs, the reduced-radix multiplication and
    // squaring in Fp become faster than the full-radix versions."
    assert!(cycles(r_ise, OpKind::FpMul) < cycles(f_ise, OpKind::FpMul));
    assert!(cycles(r_ise, OpKind::FpSqr) < cycles(f_ise, OpKind::FpSqr));

    // The ISEs accelerate every multiplicative kernel.
    for op in [
        OpKind::IntMul,
        OpKind::IntSqr,
        OpKind::MontRedc,
        OpKind::FpMul,
        OpKind::FpSqr,
    ] {
        assert!(cycles(f_ise, op) < cycles(f_isa, op), "{op:?} full");
        assert!(cycles(r_ise, op) < cycles(r_isa, op), "{op:?} reduced");
    }

    // The full-radix ISE does not change the additive kernels
    // (Table 4 reports identical 107/163/143 in both columns).
    for op in [OpKind::FastReduce, OpKind::FpAdd, OpKind::FpSub] {
        assert_eq!(cycles(f_ise, op), cycles(f_isa, op), "{op:?}");
    }

    // Squaring never loses to multiplication (Table 4: strictly
    // cheaper in three columns, equal for full-radix ISE where the
    // squaring reuses the multiplication routine).
    for col in &cols {
        assert!(cycles(col, OpKind::IntSqr) <= cycles(col, OpKind::IntMul));
        assert!(cycles(col, OpKind::FpSqr) <= cycles(col, OpKind::FpMul));
    }

    // Fp-mul decomposes into its three component rows plus small
    // staging overhead (the paper's rows sum the same way:
    // 608 + 730 + 107 ≈ 1446).
    for col in &cols {
        let parts = cycles(col, OpKind::IntMul)
            + cycles(col, OpKind::MontRedc)
            + cycles(col, OpKind::FastReduce);
        let whole = cycles(col, OpKind::FpMul);
        let ratio = whole as f64 / parts as f64;
        assert!(
            (0.85..1.15).contains(&ratio),
            "FpMul {whole} vs components {parts}"
        );
    }
}

#[test]
fn table4_speedup_band() {
    // Fp-mul speedups drive the group action; the paper's end-to-end
    // factors are 1.39x (full) and 1.71x (reduced). Assert the field
    // multiplication improvements fall in bands around those.
    let cols: Vec<_> = Config::ALL.iter().map(|&c| measure_config(c, 2)).collect();
    let base = cycles(&cols[0], OpKind::FpMul) as f64;
    let full = base / cycles(&cols[1], OpKind::FpMul) as f64;
    let red = base / cycles(&cols[3], OpKind::FpMul) as f64;
    assert!(
        (1.2..2.2).contains(&full),
        "full-radix ISE Fp-mul speedup {full:.2}"
    );
    assert!(
        (1.5..2.6).contains(&red),
        "reduced-radix ISE Fp-mul speedup {red:.2}"
    );
    assert!(
        red > full,
        "reduced radix must profit more (the paper's conclusion)"
    );
}

#[test]
fn table3_shape() {
    let t = table3();
    // DSPs unchanged; both extensions cost LUTs and Regs; reduced
    // radix needs the most LUTs; overheads stay around 10%.
    assert_eq!(t.base.dsps, t.full.dsps);
    assert_eq!(t.base.dsps, t.reduced.dsps);
    assert!(t.reduced.luts > t.full.luts);
    assert!(t.full.luts > t.base.luts);
    assert!(t.lut_overhead_percent(&t.reduced) < 20.0);
    assert!(t.reg_overhead_percent(&t.full) < 20.0);
    assert!(t.reduced.cmos > t.full.cmos);
    assert!(t.full.cmos > t.base.cmos);
}

#[test]
fn listings_instruction_counts() {
    assert_eq!(mac::listing1_full_isa().len(), 8);
    assert_eq!(mac::listing2_red_isa().len(), 6);
    assert_eq!(mac::listing3_full_ise().len(), 4);
    assert_eq!(mac::listing4_red_ise().len(), 2);
    assert_eq!(mac::carry_prop_isa().len(), 3);
    assert_eq!(mac::carry_prop_ise().len(), 2);
}
