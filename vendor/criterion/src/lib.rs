//! Offline stand-in for the `criterion` crate.
//!
//! The build environment cannot reach a crates.io mirror, so this
//! workspace vendors the API subset of `criterion 0.5` that the bench
//! targets use: [`Criterion::benchmark_group`], `sample_size`,
//! `bench_function` (with `&str` or [`BenchmarkId`]),
//! [`Bencher::iter`], and the [`criterion_group!`]/[`criterion_main!`]
//! macros.
//!
//! Instead of statistics it reports a single mean wall-clock time per
//! benchmark. Because `cargo test` also builds and runs
//! `harness = false` bench targets, the runner defaults to **one
//! timed iteration** per benchmark; pass `--bench` on the command
//! line (as `cargo bench` does) to get a calibrated timed run.

use std::time::{Duration, Instant};

/// Runs closures and counts iterations.
#[derive(Debug, Default)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the configured number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// A two-part benchmark name (`function/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds `function/parameter`.
    pub fn new(function: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }

    /// Builds a parameter-only id.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Anything accepted as a benchmark name.
pub trait IntoBenchmarkId {
    /// The rendered name.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_owned()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// The benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    /// Iterations per benchmark (1 in smoke mode, more under
    /// `cargo bench`).
    iters: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench` invokes the target with `--bench`; `cargo test`
        // invokes it with `--test` (or nothing). Only do a timed run in
        // the former so tests stay fast.
        let timed = std::env::args().any(|a| a == "--bench");
        Criterion {
            iters: if timed { 100 } else { 1 },
        }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Registers a stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        mut f: F,
    ) -> &mut Self {
        let iters = self.iters;
        run_one(&id.into_id(), iters, &mut f);
        self
    }
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, iters: u64, f: &mut F) {
    let mut bencher = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    let per_iter = bencher
        .elapsed
        .checked_div(iters.max(1) as u32)
        .unwrap_or_default();
    println!("bench: {name:<40} {per_iter:>12.2?}/iter ({iters} iters)");
}

/// A named collection of benchmarks sharing settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the smoke runner ignores it.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        mut f: F,
    ) -> &mut Self {
        let name = format!("{}/{}", self.name, id.into_id());
        run_one(&name, self.criterion.iters, &mut f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench `main` that runs the named groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

/// Re-export for code written against `criterion::black_box`.
pub use std::hint::black_box;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_each_benchmark_once_in_smoke_mode() {
        let mut c = Criterion { iters: 1 };
        let mut runs = 0;
        let mut g = c.benchmark_group("g");
        g.sample_size(10);
        g.bench_function("plain", |b| b.iter(|| runs += 1));
        g.bench_function(BenchmarkId::new("id", "param"), |b| b.iter(|| runs += 1));
        g.finish();
        assert_eq!(runs, 2);
    }

    #[test]
    fn benchmark_id_renders_both_parts() {
        assert_eq!(BenchmarkId::new("mul", "full-radix").id, "mul/full-radix");
        assert_eq!(BenchmarkId::from_parameter(7).id, "7");
    }
}
