//! Offline stand-in for the `proptest` crate.
//!
//! The build environment cannot reach a crates.io mirror, so this
//! workspace vendors the API subset of `proptest 1` that the repository
//! uses: the [`proptest!`] macro with `#![proptest_config(..)]` and
//! `name in strategy` bindings, [`strategy::Strategy`] with `prop_map`,
//! [`arbitrary::any`], integer-range strategies, tuple strategies,
//! [`array::uniform8`], [`collection::vec`], and the
//! `prop_assert!`/`prop_assert_eq!`/`prop_assume!` macros.
//!
//! Differences from the real crate, by design:
//!
//! * no shrinking — a failing case panics with the generated inputs
//!   (and the deterministic per-test seed reproduces it);
//! * generation is purely random draws from a SplitMix64 stream seeded
//!   from the test name, so every run of a test sees the same cases.

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;
    use rand::Rng;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy produced by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;

        fn sample(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.rng.gen_range(self.clone())
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, G);
}

pub mod arbitrary {
    //! The `any::<T>()` entry point.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws one uniform value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.rng.gen::<$t>()
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool);

    /// Strategy over the whole domain of `T`.
    #[derive(Debug)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Returns the canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod array {
    //! Fixed-size array strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `[S::Value; N]`.
    #[derive(Debug, Clone)]
    pub struct UniformArray<S, const N: usize>(S);

    impl<S: Strategy, const N: usize> Strategy for UniformArray<S, N> {
        type Value = [S::Value; N];

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            std::array::from_fn(|_| self.0.sample(rng))
        }
    }

    macro_rules! uniform_fn {
        ($($name:ident => $n:literal),*) => {$(
            /// Strategy for an array with every element drawn from `s`.
            pub fn $name<S: Strategy>(s: S) -> UniformArray<S, $n> {
                UniformArray(s)
            }
        )*};
    }

    uniform_fn!(uniform2 => 2, uniform4 => 4, uniform8 => 8, uniform9 => 9, uniform16 => 16);
}

pub mod collection {
    //! Growable-collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Strategy for `Vec<S::Value>` with a length drawn from a range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let n = rng.rng.gen_range(self.len.clone());
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Vector strategy: every element from `element`, length in `len`.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }
}

pub mod test_runner {
    //! Case execution: RNG, configuration and failure plumbing.

    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// The deterministic generator threaded through all strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        /// Underlying stream (public for the strategy impls).
        pub rng: StdRng,
    }

    impl TestRng {
        /// Seeds the stream from a test name (FNV-1a), so each test
        /// sees a distinct but reproducible case sequence.
        pub fn from_name(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng {
                rng: StdRng::seed_from_u64(h),
            }
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub enum TestCaseError {
        /// The case did not meet a `prop_assume!` precondition; it is
        /// skipped without counting against the case budget.
        Reject(String),
        /// An assertion failed; the test panics.
        Fail(String),
    }

    impl TestCaseError {
        /// Builds a failure.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// Builds a rejection.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
                TestCaseError::Fail(m) => write!(f, "failed: {m}"),
            }
        }
    }

    /// Per-`proptest!` block configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of accepted cases to run per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Configuration running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 32 }
        }
    }
}

/// Everything a `proptest!` user needs in scope.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// Namespace mirror (`prop::array::uniform8`, …).
    pub mod prop {
        pub use crate::array;
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Defines property tests: each `fn` runs its body over generated
/// inputs, skipping `prop_assume!` rejections and panicking on the
/// first `prop_assert!` failure.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_each! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_each! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`]: expands one test at a time.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_each {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::from_name(stringify!($name));
            let mut accepted = 0u32;
            // Rejection headroom: a test whose assumptions reject more
            // than ~15/16 of cases is considered broken.
            let mut attempts_left = config.cases.saturating_mul(16).max(16);
            while accepted < config.cases {
                assert!(
                    attempts_left > 0,
                    "proptest '{}': too many prop_assume! rejections",
                    stringify!($name),
                );
                attempts_left -= 1;
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)*
                let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                match outcome {
                    ::core::result::Result::Ok(()) => accepted += 1,
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest '{}' failed on case {}: {}",
                            stringify!($name),
                            accepted,
                            msg,
                        );
                    }
                }
            }
        }
        $crate::__proptest_each! { ($cfg) $($rest)* }
    };
}

/// Asserts a condition inside a property test without moving operands.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Asserts equality by reference (operands stay usable afterwards).
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            left,
            right,
        );
    }};
}

/// Asserts inequality by reference.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            left,
        );
    }};
}

/// Skips the current case unless a precondition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(a in 0u8..32, b in -2048i32..=2047) {
            prop_assert!(a < 32);
            prop_assert!((-2048..=2047).contains(&b));
        }

        #[test]
        fn map_and_tuples_compose(v in (0u8..4, 10u64..20).prop_map(|(a, b)| a as u64 + b)) {
            prop_assert!((10..24).contains(&v));
        }

        #[test]
        fn arrays_and_vecs_fill(xs in prop::array::uniform8(any::<u64>()),
                                ys in prop::collection::vec(0u8..3, 1..20)) {
            prop_assert_eq!(xs.len(), 8);
            prop_assert!(!ys.is_empty() && ys.len() < 20);
            prop_assert!(ys.iter().all(|&y| y < 3));
        }

        #[test]
        fn assume_rejects_without_failing(n in 0u32..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    proptest! {
        #[test]
        fn question_mark_propagates(n in 0u32..10) {
            fn helper(n: u32) -> Result<(), TestCaseError> {
                prop_assert!(n < 10);
                Ok(())
            }
            helper(n)?;
        }
    }

    #[test]
    fn failures_panic_with_case_details() {
        proptest! {
            fn always_fails(n in 0u8..4) {
                prop_assert!(n > 100, "n was {}", n);
            }
        }
        let err = std::panic::catch_unwind(always_fails).unwrap_err();
        let msg = err.downcast_ref::<String>().expect("string panic");
        assert!(msg.contains("always_fails"), "got: {msg}");
    }
}
