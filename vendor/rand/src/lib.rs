//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access to a crates.io mirror,
//! so this workspace vendors the *API subset* of `rand 0.8` that the
//! repository actually uses: [`Rng::gen`], [`Rng::gen_range`],
//! [`SeedableRng::seed_from_u64`] and [`rngs::StdRng`].
//!
//! The generator is a SplitMix64 — deterministic, seedable, and of
//! ample quality for test-vector generation and rejection sampling.
//! It makes no attempt to be bit-compatible with the real `StdRng`
//! (nothing in this repository depends on the exact stream, only on
//! per-seed determinism) and it is **not** cryptographically secure;
//! it exists so the reproduction builds and tests hermetically.

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next word of the stream.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 bits of the stream.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that [`Rng::gen`] can produce uniformly.
pub trait Standard: Sized {
    /// Samples one uniform value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Integer types usable with [`Rng::gen_range`].
pub trait SampleUniform: Copy {
    /// Samples uniformly from `[low, high]` (inclusive).
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "gen_range: empty range");
                let span = (high as i128 - low as i128) as u128 + 1;
                // Modulo sampling: bias is < 2^-64 for the small spans
                // used in this repository.
                let off = (rng.next_u64() as u128) % span;
                (low as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Samples one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + PartialOrd + Dec> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_inclusive(rng, self.start, self.end.dec())
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// Helper for half-open ranges: the predecessor of an integer.
pub trait Dec {
    /// `self - 1`.
    fn dec(self) -> Self;
}

macro_rules! impl_dec {
    ($($t:ty),*) => {$(
        impl Dec for $t {
            fn dec(self) -> Self {
                self - 1
            }
        }
    )*};
}

impl_dec!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// User-facing sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a uniform value of an inferred type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability 1/2.
    fn gen_bool(&mut self, p: f64) -> bool {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic stand-in for `rand::rngs::StdRng` (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut rng = StdRng { state: seed };
            // Warm up so that small seeds do not yield tiny first words.
            let _ = rng.next_u64();
            rng
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..16 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: i8 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&v));
            let u: usize = rng.gen_range(1..=4);
            assert!((1..=4).contains(&u));
            let w: u8 = rng.gen_range(0..3);
            assert!(w < 3);
        }
    }

    #[test]
    fn bool_takes_both_values() {
        let mut rng = StdRng::seed_from_u64(1);
        let draws: Vec<bool> = (0..64).map(|_| rng.gen()).collect();
        assert!(draws.iter().any(|&b| b));
        assert!(draws.iter().any(|&b| !b));
    }
}
